package alloc

import (
	"math"
	"testing"

	"dmra/internal/geo"
	"dmra/internal/mec"
	"dmra/internal/radio"
	"dmra/internal/workload"
)

// allAllocators returns one instance of every built-in allocator.
func allAllocators() []Allocator {
	return []Allocator{
		NewDMRA(DefaultDMRAConfig()),
		NewDCSP(),
		NewNonCo(),
		NewRandom(7),
		NewGreedy(),
	}
}

func defaultNet(t *testing.T, ues int, seed uint64) *mec.Network {
	t.Helper()
	cfg := workload.Default()
	cfg.UEs = ues
	net, err := cfg.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestByName(t *testing.T) {
	for _, name := range []string{"dmra", "dcsp", "nonco", "random", "greedy"} {
		a, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if a == nil {
			t.Errorf("ByName(%q) returned nil allocator", name)
		}
	}
	if _, err := ByName("simulated-annealing"); err == nil {
		t.Error("unknown allocator name accepted")
	}
}

func TestAllAllocatorsProduceFeasibleAssignments(t *testing.T) {
	net := defaultNet(t, 500, 11)
	for _, a := range allAllocators() {
		t.Run(a.Name(), func(t *testing.T) {
			res, err := a.Allocate(net)
			if err != nil {
				t.Fatal(err)
			}
			if err := mec.ValidateAssignment(net, res.Assignment); err != nil {
				t.Fatalf("infeasible assignment: %v", err)
			}
			if got := len(res.Assignment.ServingBS); got != 500 {
				t.Fatalf("assignment covers %d UEs, want 500", got)
			}
			if res.Stats.Iterations < 1 {
				t.Errorf("iterations = %d, want >= 1", res.Stats.Iterations)
			}
			if res.Stats.Accepts != res.Assignment.ServedCount() {
				t.Errorf("accepts = %d, served = %d; must match (no eviction)",
					res.Stats.Accepts, res.Assignment.ServedCount())
			}
		})
	}
}

func TestAllAllocatorsDeterministic(t *testing.T) {
	net := defaultNet(t, 300, 23)
	for _, a := range allAllocators() {
		t.Run(a.Name(), func(t *testing.T) {
			r1, err := a.Allocate(net)
			if err != nil {
				t.Fatal(err)
			}
			r2, err := a.Allocate(net)
			if err != nil {
				t.Fatal(err)
			}
			for u := range r1.Assignment.ServingBS {
				if r1.Assignment.ServingBS[u] != r2.Assignment.ServingBS[u] {
					t.Fatalf("UE %d assigned to %d then %d", u,
						r1.Assignment.ServingBS[u], r2.Assignment.ServingBS[u])
				}
			}
		})
	}
}

func TestAllocateEmptyScenario(t *testing.T) {
	net := defaultNet(t, 0, 1)
	for _, a := range allAllocators() {
		res, err := a.Allocate(net)
		if err != nil {
			t.Fatalf("%s on empty scenario: %v", a.Name(), err)
		}
		if len(res.Assignment.ServingBS) != 0 {
			t.Fatalf("%s produced assignments for zero UEs", a.Name())
		}
	}
}

// TestDMRAOutperformsBaselines is the headline reproduction check: averaged
// over seeds, DMRA yields strictly more total SP profit than DCSP and NonCo
// in all four figure scenarios (iota x placement), as the paper's Figs. 2-5
// report.
func TestDMRAOutperformsBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed comparison is slow")
	}
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	for _, iota := range []float64{2.0, 1.1} {
		for _, pl := range []workload.Placement{workload.PlacementRegular, workload.PlacementRandom} {
			cfg := workload.Default()
			cfg.UEs = 700
			cfg.Pricing.CrossSPFactor = iota
			cfg.Placement = pl
			sums := make(map[string]float64)
			for _, seed := range seeds {
				net, err := cfg.Build(seed)
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range []string{"dmra", "dcsp", "nonco"} {
					a, err := ByName(name)
					if err != nil {
						t.Fatal(err)
					}
					res, err := a.Allocate(net)
					if err != nil {
						t.Fatal(err)
					}
					sums[name] += mec.Profit(net, res.Assignment).TotalProfit()
				}
			}
			if sums["dmra"] <= sums["dcsp"] || sums["dmra"] <= sums["nonco"] {
				t.Errorf("iota=%g placement=%s: DMRA %.0f not above DCSP %.0f and NonCo %.0f",
					iota, pl, sums["dmra"], sums["dcsp"], sums["nonco"])
			}
		}
	}
}

func TestProfitIncreasesWithUECount(t *testing.T) {
	cfg := workload.Default()
	dmra := NewDMRA(DefaultDMRAConfig())
	prev := 0.0
	for _, n := range []int{200, 400, 600, 800} {
		cfg.UEs = n
		var sum float64
		for seed := uint64(1); seed <= 4; seed++ {
			net, err := cfg.Build(seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := dmra.Allocate(net)
			if err != nil {
				t.Fatal(err)
			}
			sum += mec.Profit(net, res.Assignment).TotalProfit()
		}
		if sum <= prev {
			t.Fatalf("profit not increasing: %0.f at %d UEs after %.0f", sum, n, prev)
		}
		prev = sum
	}
}

// --- hand-crafted scenarios for the Alg. 1 selection rules ---

// craftNetwork builds a tiny scenario with explicit entities. All UEs and
// BSs sit within coverage of each other unless placed far away.
func craftNetwork(t *testing.T, sps []mec.SP, bss []mec.BS, ues []mec.UE, services int) *mec.Network {
	t.Helper()
	rc := radio.DefaultConfig()
	rc.InterferenceMarginDB = 20
	pr := mec.Pricing{BasePrice: 1, CrossSPFactor: 2, DistanceSigma: 0.004, Law: mec.DistanceLinear}
	net, err := mec.NewNetwork(sps, bss, ues, services, rc, pr)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func spList(n int) []mec.SP {
	sps := make([]mec.SP, n)
	for i := range sps {
		sps[i] = mec.SP{ID: mec.SPID(i), Name: "sp", CRUPrice: 6, OtherCostPerCRU: 1}
	}
	return sps
}

func TestDMRASamePriorityWinsContention(t *testing.T) {
	// One BS (SP 0) with room for a single UE's CRUs; two UEs request the
	// same service at the same distance: UE 0 subscribes to SP 1, UE 1 to
	// SP 0. The BS must pick its own subscriber (Alg. 1 lines 13-16).
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{5}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 1, Pos: geo.Point{X: 100}, Service: 0, CRUDemand: 4, RateBps: 2e6},
		{ID: 1, SP: 0, Pos: geo.Point{X: -100}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(2), bss, ues, 1)

	res, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServingBS[1] != 0 {
		t.Errorf("same-SP UE 1 not served (got BS %d)", res.Assignment.ServingBS[1])
	}
	if res.Assignment.ServingBS[0] != mec.CloudBS {
		t.Errorf("cross-SP UE 0 should be forwarded, got BS %d", res.Assignment.ServingBS[0])
	}

	// With SP priority disabled, the footprint tie-break decides; both UEs
	// are identical, so the lowest ID wins.
	res, err = NewDMRA(DMRAConfig{Rho: 250, FuTieBreak: true}).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServingBS[0] != 0 {
		t.Errorf("without SP priority, UE 0 (lowest ID) should win, got %d", res.Assignment.ServingBS[0])
	}
}

func TestDMRAFuTieBreak(t *testing.T) {
	// BS 0 has capacity for one task of service 0; UE 0 can also reach
	// BS 1 (f=2) while UE 1 can only reach BS 0 (f=1): the scarce UE 1
	// must win the contested BS 0.
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{5}, MaxRRBs: 55},
		{ID: 1, SP: 0, Pos: geo.Point{X: 600}, CRUCapacity: []int{5}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		// UE 0 sits between the BSs: reaches both.
		{ID: 0, SP: 0, Pos: geo.Point{X: 300}, Service: 0, CRUDemand: 4, RateBps: 2e6},
		// UE 1 reaches only BS 0.
		{ID: 1, SP: 0, Pos: geo.Point{X: -300}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)
	if net.CoverCount(0) != 2 || net.CoverCount(1) != 1 {
		t.Fatalf("coverage setup wrong: f0=%d f1=%d", net.CoverCount(0), net.CoverCount(1))
	}

	res, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	// Both UEs must be served: UE 1 on the contested BS 0, UE 0 wherever.
	if res.Assignment.ServingBS[1] == mec.CloudBS {
		t.Error("scarce UE 1 forwarded to cloud")
	}
	if res.Assignment.ServedCount() != 2 {
		t.Errorf("served %d, want 2 (f_u tie-break should avoid stranding)", res.Assignment.ServedCount())
	}
}

func TestDMRAFootprintTieBreak(t *testing.T) {
	// Same SP, same f_u: the BS prefers the UE with the smaller
	// n_{u,i} + c_j^u footprint. UE 0 demands 5 CRUs, UE 1 demands 3.
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{6}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{X: 100}, Service: 0, CRUDemand: 5, RateBps: 2e6},
		{ID: 1, SP: 0, Pos: geo.Point{X: -100}, Service: 0, CRUDemand: 3, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)

	res, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServingBS[1] != 0 {
		t.Errorf("small-footprint UE 1 not served, got %v", res.Assignment.ServingBS)
	}
	if res.Assignment.ServingBS[0] != mec.CloudBS {
		t.Errorf("large-footprint UE 0 should lose (capacity 6 < 5+3), got BS %d", res.Assignment.ServingBS[0])
	}
}

func TestDMRAPreferencePrefersCheaperBS(t *testing.T) {
	// Two identical BSs, one same-SP and one cross-SP at equal distance:
	// v_{u,i} must rank the same-SP BS lower (better).
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{X: -100}, CRUCapacity: []int{100}, MaxRRBs: 55},
		{ID: 1, SP: 1, Pos: geo.Point{X: 100}, CRUCapacity: []int{100}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(2), bss, ues, 1)
	d := NewDMRA(DefaultDMRAConfig())
	s := mec.NewState(net)
	l0, _ := net.Link(0, 0)
	l1, _ := net.Link(0, 1)
	if v0, v1 := d.Preference(s, l0), d.Preference(s, l1); v0 >= v1 {
		t.Errorf("same-SP preference %v >= cross-SP %v", v0, v1)
	}

	res, err := d.Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServingBS[0] != 0 {
		t.Errorf("UE assigned to BS %d, want own-SP BS 0", res.Assignment.ServingBS[0])
	}
}

func TestDMRAPreferenceExhaustedBSInfinite(t *testing.T) {
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{4}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{X: 100}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)
	d := NewDMRA(DefaultDMRAConfig())
	s := mec.NewState(net)
	// Exhaust the BS completely: both CRUs and RRBs to zero is not
	// reachable via Assign here, so check the formula directly with a
	// zero-capacity denominator by draining CRUs and checking large v.
	if err := s.Assign(0, 0); err != nil {
		t.Fatal(err)
	}
	l, _ := net.Link(0, 0)
	v := d.Preference(s, l)
	if math.IsInf(v, 1) {
		return // fully exhausted: acceptable
	}
	// Partially exhausted: preference must be finite but worse than fresh.
	fresh := NewDMRA(DefaultDMRAConfig()).Preference(mec.NewState(net), l)
	if v <= fresh {
		t.Errorf("preference after exhaustion %v <= fresh %v", v, fresh)
	}
}

func TestDMRARhoSteersTowardSpareCapacity(t *testing.T) {
	// Two same-SP BSs at equal distance; BS 1 has far less spare capacity.
	// With a large rho the UE must pick the resource-rich BS 0.
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{X: -100}, CRUCapacity: []int{150}, MaxRRBs: 55},
		{ID: 1, SP: 0, Pos: geo.Point{X: 100}, CRUCapacity: []int{10}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)
	res, err := NewDMRA(DMRAConfig{Rho: 5000, SPPriority: true, FuTieBreak: true}).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServingBS[0] != 0 {
		t.Errorf("UE assigned to BS %d, want resource-rich BS 0", res.Assignment.ServingBS[0])
	}
}

func TestDMRARadioTrimming(t *testing.T) {
	// Two services on one BS with only enough RRBs for one UE: both UEs
	// are selected (one per service) but the radio budget forces trimming.
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{100, 100}, MaxRRBs: 1},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{X: 50}, Service: 0, CRUDemand: 4, RateBps: 2e6},
		{ID: 1, SP: 0, Pos: geo.Point{X: -50}, Service: 1, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 2)
	l, ok := net.Link(0, 0)
	if !ok || l.RRBs != 1 {
		t.Fatalf("setup: want 1-RRB links, got %+v ok=%v", l, ok)
	}

	res, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServedCount() != 1 {
		t.Fatalf("served %d, want exactly 1 (RRB budget)", res.Assignment.ServedCount())
	}
	if res.Stats.Rejects == 0 {
		t.Error("trimming should have recorded a reject")
	}
	if err := mec.ValidateAssignment(net, res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestUEWithNoCandidatesGoesToCloud(t *testing.T) {
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{100}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{X: 5000}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)
	for _, a := range allAllocators() {
		res, err := a.Allocate(net)
		if err != nil {
			t.Fatalf("%s: %v", a.Name(), err)
		}
		if res.Assignment.ServingBS[0] != mec.CloudBS {
			t.Errorf("%s served an unreachable UE", a.Name())
		}
	}
}

func TestNonCoPicksMaxSINR(t *testing.T) {
	// Near cross-SP BS vs far same-SP BS: NonCo must pick the near one
	// regardless of price.
	bss := []mec.BS{
		{ID: 0, SP: 1, Pos: geo.Point{X: 50}, CRUCapacity: []int{100}, MaxRRBs: 55},
		{ID: 1, SP: 0, Pos: geo.Point{X: 400}, CRUCapacity: []int{100}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(2), bss, ues, 1)
	res, err := NewNonCo().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServingBS[0] != 0 {
		t.Errorf("NonCo assigned to BS %d, want max-SINR BS 0", res.Assignment.ServingBS[0])
	}
}

func TestNonCoOneShotStrandsOverflow(t *testing.T) {
	// Two UEs whose max-SINR BS is the same tiny BS; a second BS has room
	// but NonCo must NOT renegotiate: the loser goes to the cloud.
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{4}, MaxRRBs: 55},
		{ID: 1, SP: 0, Pos: geo.Point{X: 440}, CRUCapacity: []int{100}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{X: 10}, Service: 0, CRUDemand: 4, RateBps: 2e6},
		{ID: 1, SP: 0, Pos: geo.Point{X: -10}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)

	res, err := NewNonCo().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServedCount() != 1 {
		t.Fatalf("NonCo served %d, want 1 (no renegotiation)", res.Assignment.ServedCount())
	}

	// DMRA on the same instance redirects the loser to BS 1.
	resD, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if resD.Assignment.ServedCount() != 2 {
		t.Fatalf("DMRA served %d, want 2 (redirects overflow)", resD.Assignment.ServedCount())
	}
}

func TestDCSPPrefersLowOccupation(t *testing.T) {
	// Two same-SP BSs at equal distance, one half-occupied via smaller
	// capacity: DCSP's UE proposes to the lower-occupation (bigger) BS.
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{X: -100}, CRUCapacity: []int{150}, MaxRRBs: 55},
		{ID: 1, SP: 0, Pos: geo.Point{X: 100}, CRUCapacity: []int{10}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)
	s := mec.NewState(net)
	if Occupation(s, 0) != 0 || Occupation(s, 1) != 0 {
		t.Fatal("fresh BSs should have zero occupation")
	}
	if err := s.Assign(0, 1); err != nil {
		t.Fatal(err)
	}
	if Occupation(s, 1) <= Occupation(s, 0) {
		t.Error("assignment did not raise occupation")
	}
	s.Unassign(0)

	res, err := NewDCSP().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServedCount() != 1 {
		t.Fatal("DCSP failed to serve the UE")
	}
}

func TestGreedyMarginOrdering(t *testing.T) {
	// Greedy must realize at least as much profit as Random on any
	// scenario (it is a profit-sorted variant of the same feasibility
	// search).
	net := defaultNet(t, 400, 31)
	g, err := NewGreedy().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRandom(3).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	pg := mec.Profit(net, g.Assignment).TotalProfit()
	pr := mec.Profit(net, r.Assignment).TotalProfit()
	if pg <= pr {
		t.Errorf("greedy %0.f <= random %.0f", pg, pr)
	}
}

func TestMargin(t *testing.T) {
	net := defaultNet(t, 50, 5)
	for u := 0; u < 50; u++ {
		for _, l := range net.Candidates(mec.UEID(u)) {
			m := Margin(net, l)
			if m <= 0 {
				t.Fatalf("Eq. 16 guarantees positive margins, got %v on link %+v", m, l)
			}
			ue := net.UEs[l.UE]
			sp := net.SPs[ue.SP]
			want := float64(ue.CRUDemand) * (sp.CRUPrice - sp.OtherCostPerCRU - l.PricePerCRU)
			if math.Abs(m-want) > 1e-9 {
				t.Fatalf("margin %v, want %v", m, want)
			}
		}
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	net := defaultNet(t, 200, 17)
	r1, err := NewRandom(1).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRandom(2).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for u := range r1.Assignment.ServingBS {
		if r1.Assignment.ServingBS[u] != r2.Assignment.ServingBS[u] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical random assignments")
	}
}

func TestStatsProposalsCounted(t *testing.T) {
	net := defaultNet(t, 100, 13)
	res, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Proposals < res.Stats.Accepts {
		t.Errorf("proposals %d < accepts %d", res.Stats.Proposals, res.Stats.Accepts)
	}
	if res.Stats.Proposals == 0 {
		t.Error("no proposals recorded on a non-trivial scenario")
	}
}

func TestIterationGuardReported(t *testing.T) {
	// The iteration guard is an internal-bug backstop; it must never trip
	// on real scenarios of any size.
	for _, n := range []int{1, 10, 1000} {
		net := defaultNet(t, n, 3)
		if _, err := NewDMRA(DefaultDMRAConfig()).Allocate(net); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestStableMatchFeasibleAndCompetitive(t *testing.T) {
	net := defaultNet(t, 500, 41)
	res, err := NewStableMatch().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := mec.ValidateAssignment(net, res.Assignment); err != nil {
		t.Fatalf("infeasible: %v", err)
	}
	sm := mec.Profit(net, res.Assignment).TotalProfit()
	rnd, err := NewRandom(2).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if rp := mec.Profit(net, rnd.Assignment).TotalProfit(); sm <= rp {
		t.Errorf("stable match %v not above random %v", sm, rp)
	}
	// DMRA's dynamic preferences should beat the static textbook matching.
	dm, err := NewDMRA(DefaultDMRAConfig()).Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if dp := mec.Profit(net, dm.Assignment).TotalProfit(); dp <= sm*0.95 {
		t.Errorf("DMRA %v not clearly competitive with stable match %v", dp, sm)
	}
}

func TestStableMatchDeterministic(t *testing.T) {
	net := defaultNet(t, 300, 43)
	a, err := NewStableMatch().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStableMatch().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assignment.ServingBS {
		if a.Assignment.ServingBS[u] != b.Assignment.ServingBS[u] {
			t.Fatalf("UE %d differs across runs", u)
		}
	}
}

func TestStableMatchByName(t *testing.T) {
	a, err := ByName("stablematch")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "StableMatch" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestLocalSearchImprovesOnGreedy(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		net := defaultNet(t, 700, seed)
		g, err := NewGreedy().Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := NewLocalSearch().Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := mec.ValidateAssignment(net, ls.Assignment); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		gp := mec.Profit(net, g.Assignment).TotalProfit()
		lp := mec.Profit(net, ls.Assignment).TotalProfit()
		if lp < gp-1e-9 {
			t.Errorf("seed %d: local search %v below its greedy seed %v", seed, lp, gp)
		}
	}
}

func TestLocalSearchDeterministic(t *testing.T) {
	net := defaultNet(t, 400, 47)
	a, err := NewLocalSearch().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLocalSearch().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assignment.ServingBS {
		if a.Assignment.ServingBS[u] != b.Assignment.ServingBS[u] {
			t.Fatalf("UE %d differs across runs", u)
		}
	}
}

func TestLocalSearchPassCap(t *testing.T) {
	net := defaultNet(t, 300, 49)
	ls := &LocalSearch{MaxPasses: 1}
	res, err := ls.Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if err := mec.ValidateAssignment(net, res.Assignment); err != nil {
		t.Fatal(err)
	}
}

func TestAuctionFeasibleAndCompetitive(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		net := defaultNet(t, 700, seed)
		res, err := NewAuction().Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		if err := mec.ValidateAssignment(net, res.Assignment); err != nil {
			t.Fatalf("seed %d: infeasible: %v", seed, err)
		}
		ap := mec.Profit(net, res.Assignment).TotalProfit()
		rnd, err := NewRandom(seed).Allocate(net)
		if err != nil {
			t.Fatal(err)
		}
		if rp := mec.Profit(net, rnd.Assignment).TotalProfit(); ap <= rp {
			t.Errorf("seed %d: auction %v not above random %v", seed, ap, rp)
		}
	}
}

func TestAuctionPricesClearCongestion(t *testing.T) {
	// A contested tiny BS next to a spare one: the auction must end with
	// both served (the loser priced out to the alternative).
	bss := []mec.BS{
		{ID: 0, SP: 0, Pos: geo.Point{}, CRUCapacity: []int{4}, MaxRRBs: 55},
		{ID: 1, SP: 0, Pos: geo.Point{X: 300}, CRUCapacity: []int{100}, MaxRRBs: 55},
	}
	ues := []mec.UE{
		{ID: 0, SP: 0, Pos: geo.Point{X: 10}, Service: 0, CRUDemand: 4, RateBps: 2e6},
		{ID: 1, SP: 0, Pos: geo.Point{X: -10}, Service: 0, CRUDemand: 4, RateBps: 2e6},
	}
	net := craftNetwork(t, spList(1), bss, ues, 1)
	res, err := NewAuction().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	if res.Assignment.ServedCount() != 2 {
		t.Fatalf("auction served %d, want 2 (price should redirect the loser)", res.Assignment.ServedCount())
	}
}

func TestAuctionDeterministic(t *testing.T) {
	net := defaultNet(t, 400, 53)
	a, err := NewAuction().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAuction().Allocate(net)
	if err != nil {
		t.Fatal(err)
	}
	for u := range a.Assignment.ServingBS {
		if a.Assignment.ServingBS[u] != b.Assignment.ServingBS[u] {
			t.Fatalf("UE %d differs across runs", u)
		}
	}
}

func TestAuctionEpsilonStepVariants(t *testing.T) {
	net := defaultNet(t, 500, 59)
	for _, eps := range []float64{0.1, 1, 5} {
		a := &Auction{EpsilonStep: eps}
		res, err := a.Allocate(net)
		if err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
		if err := mec.ValidateAssignment(net, res.Assignment); err != nil {
			t.Fatalf("eps=%g: %v", eps, err)
		}
	}
}
