// Differential tests pinning the incremental delta-repair engine to
// from-scratch DMRA: an engine.Incremental driven through fuzzed
// arrival/departure/demand-change sequences must hold exactly the
// assignment, residuals, and round statistics that re-running Alg. 1
// from scratch over each epoch's waiting set produces. In package
// alloc_test alongside the SoA parity suite, whose worker-count sweep
// (DMRA_TEST_PROPOSE_WORKERS) it shares.
package alloc_test

import (
	"testing"

	"dmra/internal/alloc"
	"dmra/internal/engine"
	"dmra/internal/mec"
)

// deltaHarness drives the incremental engine and the from-scratch
// comparator (mec.State + SubView + the legacy pointer engine — the
// exact epoch path of the online session's default mode) through one
// identical churn sequence, comparing after every epoch.
type deltaHarness struct {
	t      *testing.T
	net    *mec.Network
	state  *mec.State
	sub    *mec.SubView
	legacy *alloc.DMRA
	res    alloc.Result
	inc    *engine.Incremental

	// Session-mirroring population state: every UE is in exactly one of
	// inactive, waiting, or active (active splits into edge — assigned
	// in state — and cloud).
	waiting  []mec.UEID
	active   []mec.UEID
	inactive []mec.UEID
}

func newDeltaHarness(t *testing.T, net *mec.Network, dcfg alloc.DMRAConfig, workers int) *deltaHarness {
	t.Helper()
	h := &deltaHarness{
		t:      t,
		net:    net,
		state:  mec.NewState(net),
		sub:    net.NewSubView(),
		legacy: alloc.NewDMRA(dcfg).ForceLegacy(),
		inc:    new(engine.Incremental),
	}
	if err := h.inc.Begin(net, engine.Config(dcfg), workers); err != nil {
		t.Fatalf("Begin: %v", err)
	}
	h.inactive = make([]mec.UEID, len(net.UEs))
	for u := range h.inactive {
		h.inactive[u] = mec.UEID(u)
	}
	return h
}

// step applies one churn event decoded from b: two arrival codes (churn
// is arrival-heavy in every workload), one departure, one demand
// change, with the pick index and new demand drawn from the high bits.
func (h *deltaHarness) step(b byte) {
	arg := int(b >> 2)
	switch b & 3 {
	case 0, 1: // arrival
		if len(h.inactive) == 0 {
			return
		}
		k := arg % len(h.inactive)
		u := h.inactive[k]
		h.inactive[k] = h.inactive[len(h.inactive)-1]
		h.inactive = h.inactive[:len(h.inactive)-1]
		h.waiting = append(h.waiting, u)
		if err := h.inc.Arrive(u); err != nil {
			h.t.Fatalf("Arrive(%d): %v", u, err)
		}
	case 2: // departure of an active UE (edge or cloud)
		if len(h.active) == 0 {
			return
		}
		k := arg % len(h.active)
		u := h.active[k]
		h.active[k] = h.active[len(h.active)-1]
		h.active = h.active[:len(h.active)-1]
		if h.state.Assigned(u) {
			h.state.Unassign(u)
		}
		h.inc.Depart(u)
		h.inactive = append(h.inactive, u)
	case 3: // demand change, on any UE in any lifecycle state
		if len(h.net.UEs) == 0 {
			return
		}
		u := mec.UEID(arg % len(h.net.UEs))
		d := 1 + arg%6
		if h.state.Assigned(u) {
			// An assigned UE must be released before its demand mutates
			// (state.Unassign credits ue.CRUDemand), then re-compete: the
			// comparator re-queues it, mirroring SetDemand's re-pend.
			h.state.Unassign(u)
			for k, a := range h.active {
				if a == u {
					h.active[k] = h.active[len(h.active)-1]
					h.active = h.active[:len(h.active)-1]
					break
				}
			}
			h.waiting = append(h.waiting, u)
		}
		h.net.UEs[u].CRUDemand = d
		if err := h.inc.SetDemand(u, d); err != nil {
			h.t.Fatalf("SetDemand(%d, %d): %v", u, d, err)
		}
	}
}

// epoch settles the incremental engine, re-runs from-scratch DMRA over
// the same waiting set and residuals, and requires identical outcomes:
// per-UE placements, full per-BS/per-service residual ledgers, and the
// Alg. 1 round counters.
func (h *deltaHarness) epoch() {
	if len(h.waiting) == 0 {
		return
	}
	t := h.t
	ds, err := h.inc.Settle()
	if err != nil {
		t.Fatalf("Settle: %v", err)
	}
	sub := h.sub.Refresh(h.waiting, h.state)
	if err := h.legacy.AllocateInto(sub, &h.res); err != nil {
		t.Fatalf("from-scratch allocate: %v", err)
	}
	if ds.Proposals != h.res.Stats.Proposals || ds.Accepts != h.res.Stats.Accepts ||
		ds.Rejects != h.res.Stats.Rejects {
		t.Fatalf("repair stats diverge: delta %+v vs from-scratch %+v", ds, h.res.Stats)
	}
	// A frontier of zero means every waiting UE had no candidates; the
	// from-scratch run still spins its one empty round.
	if ds.Frontier > 0 && ds.Rounds != h.res.Stats.Iterations {
		t.Fatalf("repair rounds %d != from-scratch rounds %d", ds.Rounds, h.res.Stats.Iterations)
	}

	serving := h.inc.Serving()
	for _, u := range h.waiting {
		want := h.res.Assignment.ServingBS[u]
		if got := serving[u]; got != int32(want) {
			t.Fatalf("UE %d: delta-repair -> %d, from-scratch -> %d", u, got, want)
		}
		if want != mec.CloudBS {
			if err := h.state.Assign(u, want); err != nil {
				t.Fatalf("Assign(%d, %d): %v", u, want, err)
			}
		}
		h.active = append(h.active, u)
	}
	h.waiting = h.waiting[:0]

	for b := 0; b < len(h.net.BSs); b++ {
		for j := 0; j < h.net.Services; j++ {
			if got, want := h.inc.RemCRU(b, j), h.state.RemainingCRU(mec.BSID(b), mec.ServiceID(j)); got != want {
				t.Fatalf("BS %d service %d: delta residual CRUs %d, from-scratch %d", b, j, got, want)
			}
		}
		if got, want := h.inc.RemRRB(b), h.state.RemainingRRBs(mec.BSID(b)); got != want {
			t.Fatalf("BS %d: delta residual RRBs %d, from-scratch %d", b, got, want)
		}
	}
}

// finish runs a last epoch over any queued churn and both ledgers'
// O(population) invariant recounts.
func (h *deltaHarness) finish() {
	h.epoch()
	if err := h.inc.CheckInvariants(); err != nil {
		h.t.Fatalf("incremental invariants: %v", err)
	}
	if err := h.state.CheckInvariants(); err != nil {
		h.t.Fatalf("state invariants: %v", err)
	}
	serving := h.inc.Serving()
	for u := range h.net.UEs {
		if want := h.state.ServingBS(mec.UEID(u)); serving[u] != int32(want) {
			h.t.Fatalf("final UE %d: delta-repair -> %d, from-scratch -> %d", u, serving[u], want)
		}
	}
}

// runScript drives a full churn sequence with an epoch every fourth
// event (so repairs interleave with fresh churn) and a final epoch.
func runScript(t *testing.T, net *mec.Network, dcfg alloc.DMRAConfig, workers int, script []byte) {
	h := newDeltaHarness(t, net, dcfg, workers)
	for i, b := range script {
		h.step(b)
		if i%4 == 3 {
			h.epoch()
		}
	}
	h.finish()
}

// deltaScript generates a deterministic pseudo-random churn script from
// a seed (xorshift; no global RNG so runs are reproducible).
func deltaScript(seed uint64, n int) []byte {
	s := seed*2654435761 + 1
	out := make([]byte, n)
	for i := range out {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		out[i] = byte(s)
	}
	return out
}

// TestDeltaParityScripts pins delta-repair ≡ from-scratch across
// scenario seeds and the swept propose-worker widths on long
// deterministic churn scripts — the non-fuzz face of FuzzDeltaParity,
// and what check.sh's delta-parity gate runs race-enabled.
func TestDeltaParityScripts(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42, 99, 1234} {
		net, err := alloc.GenScenarioForTest(seed).Build(seed)
		if err != nil {
			continue
		}
		dcfg := alloc.DefaultDMRAConfig()
		for _, workers := range soaTestWorkers() {
			runScript(t, net, dcfg, workers, deltaScript(seed*64+uint64(workers), 400))
			// Fresh comparator state per run: rebuild the network so the
			// demand mutations of one sweep don't leak into the next.
			net, err = alloc.GenScenarioForTest(seed).Build(seed)
			if err != nil {
				t.Fatalf("rebuild seed %d: %v", seed, err)
			}
		}
	}
}

// TestDeltaDepartureRefill pins the invalidation path specifically: fill
// the network to saturation, depart a block of served UEs, and require
// the re-arrivals to land exactly where a from-scratch run puts them —
// the case that is wrong if a ledger credit fails to invalidate the
// cached candidate drops of the UEs covering the credited BS.
func TestDeltaDepartureRefill(t *testing.T) {
	net, err := alloc.GenScenarioForTest(7).Build(7)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for _, workers := range soaTestWorkers() {
		h := newDeltaHarness(t, net, alloc.DefaultDMRAConfig(), workers)
		// Saturate: everyone arrives, one epoch.
		for u := range net.UEs {
			h.step(byte(u<<2) | 0)
		}
		h.epoch()
		// Churn waves: depart a sweep of active UEs, re-arrive, repeat.
		for wave := 0; wave < 6; wave++ {
			for i := 0; i < len(net.UEs)/3; i++ {
				h.step(byte(i<<2) | 2)
			}
			h.epoch()
			for i := 0; i < len(net.UEs)/3; i++ {
				h.step(byte(i<<2) | 0)
			}
			h.epoch()
		}
		h.finish()
		net, err = alloc.GenScenarioForTest(7).Build(7)
		if err != nil {
			t.Fatalf("rebuild: %v", err)
		}
	}
}

// FuzzDeltaParity is the delta-repair differential fuzz gate: across
// fuzzed scenarios, rho values, worker counts, and churn scripts, the
// incremental engine's placements, residual ledgers, and round counters
// must equal a from-scratch DMRA run over every epoch's waiting set.
func FuzzDeltaParity(f *testing.F) {
	f.Add(uint64(1), int16(250), uint8(0), uint8(1), []byte{0, 4, 8, 1, 2, 12, 3, 0})
	f.Add(uint64(7), int16(0), uint8(1), uint8(3), deltaScript(7, 64))
	f.Add(uint64(42), int16(777), uint8(2), uint8(2), deltaScript(42, 128))
	f.Add(uint64(1234), int16(1000), uint8(3), uint8(8), deltaScript(1234, 32))
	f.Add(uint64(99), int16(31), uint8(0), uint8(0), deltaScript(99, 200))
	f.Fuzz(func(t *testing.T, seed uint64, rhoRaw int16, flags, workersRaw uint8, script []byte) {
		net, err := alloc.GenScenarioForTest(seed).Build(seed)
		if err != nil {
			t.Skip() // generator can produce shapes Build rejects; not under test
		}
		if net.Dense() == nil {
			t.Skip()
		}
		dcfg := alloc.DMRAConfig{
			// Incremental mode shares the SoA engine's rho >= 0
			// precondition (lazy-heap exactness).
			Rho:        float64(rhoRaw&0x7fff) / 4,
			SPPriority: flags&1 == 0,
			FuTieBreak: flags&2 == 0,
		}
		if len(script) > 512 {
			script = script[:512]
		}
		runScript(t, net, dcfg, 1+int(workersRaw%8), script)
	})
}
