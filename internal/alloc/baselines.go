package alloc

import (
	"fmt"
	"sort"

	"dmra/internal/mec"
	"dmra/internal/rng"
)

// Random assigns each UE (in a seeded random order) to a uniformly chosen
// feasible candidate BS. It is the weakest sensible baseline: feasible but
// oblivious to price, SP affinity, and scarcity.
type Random struct {
	seed uint64
}

var _ Allocator = (*Random)(nil)

// NewRandom returns a Random allocator with the given seed. The same seed
// over the same network reproduces the same assignment.
func NewRandom(seed uint64) *Random { return &Random{seed: seed} }

// Name implements Allocator.
func (a *Random) Name() string { return "Random" }

// Allocate implements Allocator.
func (a *Random) Allocate(net *mec.Network) (Result, error) {
	state := mec.NewState(net)
	src := rng.New(a.seed)
	var stats Stats
	stats.Iterations = 1
	for _, u := range src.Perm(len(net.UEs)) {
		uid := mec.UEID(u)
		var feasible []mec.Link
		for _, l := range net.Candidates(uid) {
			if state.CanServe(uid, l.BS) {
				feasible = append(feasible, l)
			}
		}
		if len(feasible) == 0 {
			continue
		}
		l := feasible[src.Intn(len(feasible))]
		stats.Proposals++
		if err := state.Assign(uid, l.BS); err != nil {
			return Result{}, fmt.Errorf("alloc: Random: %w", err)
		}
		stats.Accepts++
	}
	if err := state.CheckInvariants(); err != nil {
		return Result{}, fmt.Errorf("alloc: Random produced invalid state: %w", err)
	}
	return Result{Assignment: state.Snapshot(), Stats: stats}, nil
}

// Greedy is a centralized profit-greedy baseline: it sorts all candidate
// links by the SP margin a grant would realize, descending, and admits
// greedily subject to feasibility. It is not decentralized (it needs a
// global view) and serves as a strong heuristic reference for DMRA.
type Greedy struct{}

var _ Allocator = (*Greedy)(nil)

// NewGreedy returns the centralized greedy baseline.
func NewGreedy() *Greedy { return &Greedy{} }

// Name implements Allocator.
func (a *Greedy) Name() string { return "Greedy" }

// Margin returns the MEC-layer profit realized by serving link l:
// c_j^u * (m_k - m_k^o - p_{i,u}).
func Margin(net *mec.Network, l mec.Link) float64 {
	ue := &net.UEs[l.UE]
	sp := &net.SPs[ue.SP]
	return float64(ue.CRUDemand) * (sp.CRUPrice - sp.OtherCostPerCRU - l.PricePerCRU)
}

// Allocate implements Allocator.
func (a *Greedy) Allocate(net *mec.Network) (Result, error) {
	state := mec.NewState(net)
	var stats Stats
	stats.Iterations = 1

	var links []mec.Link
	for u := range net.UEs {
		links = append(links, net.Candidates(mec.UEID(u))...)
	}
	sort.SliceStable(links, func(i, j int) bool {
		mi, mj := Margin(net, links[i]), Margin(net, links[j])
		if mi != mj {
			return mi > mj
		}
		if links[i].UE != links[j].UE {
			return links[i].UE < links[j].UE
		}
		return links[i].BS < links[j].BS
	})
	for _, l := range links {
		if state.Assigned(l.UE) || !state.CanServe(l.UE, l.BS) {
			continue
		}
		stats.Proposals++
		if err := state.Assign(l.UE, l.BS); err != nil {
			return Result{}, fmt.Errorf("alloc: Greedy: %w", err)
		}
		stats.Accepts++
	}
	if err := state.CheckInvariants(); err != nil {
		return Result{}, fmt.Errorf("alloc: Greedy produced invalid state: %w", err)
	}
	return Result{Assignment: state.Snapshot(), Stats: stats}, nil
}
