package alloc

import "dmra/internal/workload"

// GenScenarioForTest exposes the fuzz scenario generator to external test
// packages: the differential fuzz target lives in package alloc_test so it
// can import internal/protocol without an import cycle.
func GenScenarioForTest(seed uint64) workload.Config { return fuzzScenario(seed) }

// ForceNaive switches d to the reference implementation (full Eq. 17 sweep
// per proposal, fresh buffers per round) and returns d for chaining.
func (d *DMRA) ForceNaive() *DMRA {
	d.naive = true
	return d
}

// ForceLegacy switches d to the pointer-based cached engine even when the
// network has a dense SoA view, and returns d for chaining. The SoA
// differential fuzz target pins the arena engine against it.
func (d *DMRA) ForceLegacy() *DMRA {
	d.legacy = true
	return d
}
