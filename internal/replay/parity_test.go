package replay

import (
	"testing"

	"dmra/internal/alloc"
	"dmra/internal/engine"
	"dmra/internal/mec"
	"dmra/internal/obs"
	"dmra/internal/protocol"
	"dmra/internal/wire"
	"dmra/internal/workload"
)

// parityShape derives a randomized-but-buildable scenario from one seed,
// compact enough that the wire runtime's one-TCP-server-per-BS stays
// cheap (mirrors internal/wire's fuzz shape).
func parityShape(seed uint64) workload.Config {
	cfg := workload.Default()
	cfg.SPs = int(seed%4) + 1
	cfg.BSsPerSP = int(seed/4%4) + 1
	cfg.Services = int(seed/16%6) + 1
	cfg.ServicesPerBS = cfg.Services
	cfg.UEs = int(seed % 80)
	cfg.Radio.CoverageRadiusM = 200 + float64(seed%7)*40
	if seed%5 == 0 {
		cfg.Placement = workload.PlacementRandom
	}
	cfg.SPCRUPrice = 12
	return cfg
}

// liveRun is one runtime execution observed two ways: the trace the sink
// captured and the per-round live snapshots the RoundHook exported.
type liveRun struct {
	name     string
	events   []obs.Event
	captured []*engine.Snapshot
}

// runAllRuntimes executes the same scenario under all three runtimes —
// synchronous solver, discrete-event protocol, TCP cluster at a
// seed-derived shard count — each with a trace sink and a round hook.
func runAllRuntimes(t *testing.T, net *mec.Network, seed uint64) []liveRun {
	t.Helper()
	var runs []liveRun

	hook := func(dst *[]*engine.Snapshot) engine.RoundHook {
		return func(s *engine.Snapshot) { *dst = append(*dst, s.Clone()) }
	}

	var allocCaptured []*engine.Snapshot
	allocSink := obs.NewSink(nil, 1<<17)
	d := alloc.NewDMRA(alloc.DefaultDMRAConfig()).
		WithObserver(obs.NewRecorder(nil, allocSink)).
		WithRoundHook(hook(&allocCaptured))
	if _, err := d.Allocate(net); err != nil {
		t.Fatalf("seed %d: alloc: %v", seed, err)
	}
	runs = append(runs, liveRun{"alloc", allocSink.Events(), allocCaptured})

	var protoCaptured []*engine.Snapshot
	protoSink := obs.NewSink(nil, 1<<17)
	protoCfg := protocol.DefaultConfig()
	protoCfg.DMRA = alloc.DefaultDMRAConfig()
	protoCfg.Obs = obs.NewRecorder(nil, protoSink)
	protoCfg.RoundHook = hook(&protoCaptured)
	if _, err := protocol.Run(net, protoCfg); err != nil {
		t.Fatalf("seed %d: protocol: %v", seed, err)
	}
	runs = append(runs, liveRun{"protocol", protoSink.Events(), protoCaptured})

	var wireCaptured []*engine.Snapshot
	wireSink := obs.NewSink(nil, 1<<17)
	if _, err := wire.RunClusterWith(net, wire.ClusterConfig{
		DMRA:      alloc.DefaultDMRAConfig(),
		Shards:    1 + int(seed/3%8),
		Obs:       obs.NewRecorder(nil, wireSink),
		RoundHook: hook(&wireCaptured),
	}); err != nil {
		t.Fatalf("seed %d: wire: %v", seed, err)
	}
	runs = append(runs, liveRun{"wire", wireSink.Events(), wireCaptured})
	return runs
}

// checkReplayParity replays one run's trace and asserts the machine's
// state equals the live snapshot at every round barrier and at the end
// of the trace.
func checkReplayParity(t *testing.T, net *mec.Network, seed uint64, run liveRun) {
	t.Helper()
	if len(run.captured) == 0 {
		t.Fatalf("seed %d: %s: round hook never fired", seed, run.name)
	}
	m := New(net)
	for _, e := range run.events {
		// A barrier opening round r+1 means round r is fully applied:
		// the machine must match the live snapshot the hook exported at
		// the end of round r.
		if e.Kind == obs.KindRound && e.Round >= 2 {
			idx := e.Round - 2
			if idx >= len(run.captured) {
				t.Fatalf("seed %d: %s: trace has round %d, hook captured only %d rounds",
					seed, run.name, e.Round, len(run.captured))
			}
			if d := m.Snapshot().Diff(run.captured[idx]); d != nil {
				t.Fatalf("seed %d: %s: replayed state diverges from live state at round %d:\n%v",
					seed, run.name, e.Round-1, d)
			}
		}
		if err := m.Apply(e); err != nil {
			t.Fatalf("seed %d: %s: replay failed: %v", seed, run.name, err)
		}
	}
	final := run.captured[len(run.captured)-1]
	if d := m.Snapshot().Diff(final); d != nil {
		t.Fatalf("seed %d: %s: replayed final state diverges from live state (round %d):\n%v",
			seed, run.name, final.Round, d)
	}
}

func replayParityForSeed(t *testing.T, seed uint64) {
	t.Helper()
	net, err := parityShape(seed).Build(seed)
	if err != nil {
		t.Skip("unbuildable shape")
	}
	for _, run := range runAllRuntimes(t, net, seed) {
		checkReplayParity(t, net, seed, run)
	}
}

// TestReplayParity is the deterministic replay-parity gate run by
// scripts/check.sh under -race: for a spread of scenario shapes, the
// trace-reconstructed state must equal the live engine state at every
// round of every runtime.
func TestReplayParity(t *testing.T) {
	for _, seed := range []uint64{0, 1, 7, 19, 42, 77, 137, 5000} {
		replayParityForSeed(t, seed)
	}
}

// FuzzReplayParity extends the gate over fuzzed scenario shapes and
// shard counts.
func FuzzReplayParity(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 137, 5000} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		replayParityForSeed(t, seed)
	})
}

// TestReplayRunUptoRound pins Run's round-bounded replay: the state at
// round N must equal the live snapshot captured after round N.
func TestReplayRunUptoRound(t *testing.T) {
	const seed = 42
	net, err := parityShape(seed).Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	runs := runAllRuntimes(t, net, seed)
	run := runs[0] // alloc
	for round := 1; round <= len(run.captured); round++ {
		m, err := Run(net, run.events, round)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if d := m.Snapshot().Diff(run.captured[round-1]); d != nil {
			t.Fatalf("round %d: bounded replay diverges:\n%v", round, d)
		}
	}
}
