// Package replay reconstructs the full DMRA matching state at any round
// from a JSONL convergence trace (internal/obs), without re-running the
// algorithm: per-BS ledger occupancy and residuals, per-UE status
// (pending/matched/trimmed/cloud) and preference-order position. The
// reconstruction is proven against the live engine — the replay-parity
// test drives all three runtimes with an engine.RoundHook and asserts
// the rebuilt engine.Snapshot is identical at every round barrier.
//
// Replay targets one-shot convergence traces (dmra-sim over alloc,
// protocol or wire) and assumes a loss-free run: with message loss the
// trace still decodes, but accepts that never reached their UE leak
// reservations the event stream cannot see. Interleaved multi-run
// traces (dmra-figures replications, online epoch streams that restart
// round numbering) are detected by their non-monotone round numbers and
// rejected with an error rather than silently mis-reconstructed.
package replay

import (
	"fmt"

	"dmra/internal/engine"
	"dmra/internal/mec"
	"dmra/internal/obs"
)

// Phase is a UE's reconstructed protocol status.
type Phase uint8

const (
	// PhasePending: the UE is unserved and still has candidates to try.
	PhasePending Phase = iota
	// PhaseMatched: a BS accepted the UE's request.
	PhaseMatched
	// PhaseTrimmed: the UE's last request lost the radio-budget trim
	// (Alg. 1 lines 22-25) and will retry next round.
	PhaseTrimmed
	// PhaseCloud: the UE exhausted its candidate set and fell back to
	// the remote cloud.
	PhaseCloud
)

var phaseNames = [...]string{
	PhasePending: "pending",
	PhaseMatched: "matched",
	PhaseTrimmed: "trimmed",
	PhaseCloud:   "cloud",
}

// String returns the phase's display name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// UEStatus is one UE's reconstructed view of the run so far.
type UEStatus struct {
	Phase Phase
	// ServingBS is the admitting BS, or mec.CloudBS.
	ServingBS mec.BSID
	// Proposals counts the UE's requests observed so far.
	Proposals int
	// LastBS is the most recently proposed-to BS (mec.CloudBS if none).
	LastBS mec.BSID
	// PrefPos is LastBS's index in the UE's candidate list B_u (its
	// preference-order position over the static candidate set), or -1.
	PrefPos int
	// Pruned counts permanently rejected (pruned) candidates.
	Pruned int
}

// Machine folds a convergence-event stream into matching state. Apply
// is bounds-checked everywhere and returns errors instead of panicking,
// so arbitrary (fuzzed, truncated, corrupted) traces are safe to feed.
type Machine struct {
	net   *mec.Network
	snap  *engine.Snapshot
	ues   []UEStatus
	round int
	count int64
}

// New returns a machine at round 0 over net: full capacities, every UE
// pending.
func New(net *mec.Network) *Machine {
	m := &Machine{
		net:  net,
		snap: engine.NewSnapshot(net),
		ues:  make([]UEStatus, len(net.UEs)),
	}
	for u := range m.ues {
		m.ues[u].ServingBS = mec.CloudBS
		m.ues[u].LastBS = mec.CloudBS
		m.ues[u].PrefPos = -1
	}
	return m
}

// Round returns the round of the last applied round barrier.
func (m *Machine) Round() int { return m.round }

// Events returns the number of events applied.
func (m *Machine) Events() int64 { return m.count }

// Snapshot returns the machine's live state in the engine's snapshot
// shape. It is the machine's internal state: read it, or Clone to
// retain across further Apply calls.
func (m *Machine) Snapshot() *engine.Snapshot { return m.snap }

// UE returns UE u's reconstructed status (zero value when out of range).
func (m *Machine) UE(u int) UEStatus {
	if u < 0 || u >= len(m.ues) {
		return UEStatus{ServingBS: mec.CloudBS, LastBS: mec.CloudBS, PrefPos: -1}
	}
	return m.ues[u]
}

// checkUE validates a UE id carried by an event.
func (m *Machine) checkUE(e obs.Event) error {
	if e.UE < 0 || e.UE >= len(m.ues) {
		return fmt.Errorf("replay: event %d: UE %d outside [0, %d)", e.Seq, e.UE, len(m.ues))
	}
	return nil
}

// checkBS validates a BS id carried by an event.
func (m *Machine) checkBS(e obs.Event) error {
	if e.BS < 0 || e.BS >= len(m.snap.RemRRB) {
		return fmt.Errorf("replay: event %d: BS %d outside [0, %d)", e.Seq, e.BS, len(m.snap.RemRRB))
	}
	return nil
}

// prefPos returns bs's index in u's candidate list, or -1.
func (m *Machine) prefPos(u mec.UEID, bs mec.BSID) int {
	for i, l := range m.net.Candidates(u) {
		if l.BS == bs {
			return i
		}
	}
	return -1
}

// Apply folds one event into the state. Errors leave the machine in a
// well-defined (best-effort) state; callers may stop or continue.
func (m *Machine) Apply(e obs.Event) error {
	m.count++
	switch e.Kind {
	case obs.KindRound:
		if e.Round != m.round+1 {
			return fmt.Errorf("replay: event %d: round barrier %d after round %d (interleaved multi-run or out-of-order trace?)",
				e.Seq, e.Round, m.round)
		}
		m.round = e.Round
		m.snap.Round = e.Round
		return nil
	case obs.KindPropose:
		if err := m.eventRound(e); err != nil {
			return err
		}
		if err := m.checkUE(e); err != nil {
			return err
		}
		if err := m.checkBS(e); err != nil {
			return err
		}
		st := &m.ues[e.UE]
		st.Proposals++
		st.LastBS = mec.BSID(e.BS)
		st.PrefPos = m.prefPos(mec.UEID(e.UE), mec.BSID(e.BS))
		if st.Phase == PhaseTrimmed {
			st.Phase = PhasePending
		}
		return nil
	case obs.KindAccept:
		if err := m.eventRound(e); err != nil {
			return err
		}
		if err := m.checkUE(e); err != nil {
			return err
		}
		if err := m.checkBS(e); err != nil {
			return err
		}
		return m.accept(e)
	case obs.KindRejectPermanent:
		if err := m.eventRound(e); err != nil {
			return err
		}
		if err := m.checkUE(e); err != nil {
			return err
		}
		if err := m.checkBS(e); err != nil {
			return err
		}
		m.ues[e.UE].Pruned++
		return nil
	case obs.KindRejectTrim:
		if err := m.eventRound(e); err != nil {
			return err
		}
		if err := m.checkUE(e); err != nil {
			return err
		}
		if err := m.checkBS(e); err != nil {
			return err
		}
		if m.ues[e.UE].Phase == PhasePending {
			m.ues[e.UE].Phase = PhaseTrimmed
		}
		return nil
	case obs.KindCloudFallback:
		if err := m.eventRound(e); err != nil {
			return err
		}
		if err := m.checkUE(e); err != nil {
			return err
		}
		if m.ues[e.UE].Phase == PhaseMatched {
			return fmt.Errorf("replay: event %d: UE %d fell back to cloud after being matched to BS %d",
				e.Seq, e.UE, m.ues[e.UE].ServingBS)
		}
		m.ues[e.UE].Phase = PhaseCloud
		return nil
	case obs.KindBroadcast:
		if err := m.eventRound(e); err != nil {
			return err
		}
		return m.checkBS(e)
	default:
		return fmt.Errorf("replay: event %d: unknown kind %d", e.Seq, uint8(e.Kind))
	}
}

// eventRound checks that a non-barrier event belongs to the open round.
func (m *Machine) eventRound(e obs.Event) error {
	if m.round == 0 {
		return fmt.Errorf("replay: event %d: %s before the first round barrier", e.Seq, e.Kind)
	}
	if e.Round != m.round {
		return fmt.Errorf("replay: event %d: %s carries round %d inside round %d", e.Seq, e.Kind, e.Round, m.round)
	}
	return nil
}

// accept debits the admitting BS's ledger and records the assignment.
// A re-sent accept for an existing (UE, BS) match is idempotent — lossy
// protocol runs re-send accepts — but a second accept on a different BS
// is a corrupt trace.
func (m *Machine) accept(e obs.Event) error {
	st := &m.ues[e.UE]
	bs := mec.BSID(e.BS)
	if st.Phase == PhaseMatched {
		if st.ServingBS == bs {
			return nil // idempotent accept re-send
		}
		return fmt.Errorf("replay: event %d: UE %d accepted by BS %d while matched to BS %d",
			e.Seq, e.UE, e.BS, st.ServingBS)
	}
	link, ok := m.net.Link(mec.UEID(e.UE), bs)
	if !ok {
		return fmt.Errorf("replay: event %d: UE %d accepted by non-candidate BS %d", e.Seq, e.UE, e.BS)
	}
	ue := &m.net.UEs[e.UE]
	svc := int(ue.Service)
	if svc < 0 || svc >= m.snap.Services {
		return fmt.Errorf("replay: event %d: UE %d requests service %d outside BS %d's %d services",
			e.Seq, e.UE, svc, e.BS, m.snap.Services)
	}
	if m.snap.CRU(e.BS, svc) < ue.CRUDemand || m.snap.RemRRB[e.BS] < link.RRBs {
		return fmt.Errorf("replay: event %d: accept of UE %d overdraws BS %d (need %d CRUs/%d RRBs, have %d/%d)",
			e.Seq, e.UE, e.BS, ue.CRUDemand, link.RRBs, m.snap.CRU(e.BS, svc), m.snap.RemRRB[e.BS])
	}
	m.snap.RemCRU[e.BS*m.snap.Services+svc] -= ue.CRUDemand
	m.snap.RemRRB[e.BS] -= link.RRBs
	m.snap.ServingBS[e.UE] = bs
	st.Phase = PhaseMatched
	st.ServingBS = bs
	return nil
}

// Run replays events over net up to the end of round uptoRound
// (inclusive; <= 0 means the whole trace) and returns the machine. It
// stops cleanly at the next round barrier past uptoRound; an apply
// error is returned alongside the machine reconstructed so far.
func Run(net *mec.Network, events []obs.Event, uptoRound int) (*Machine, error) {
	m := New(net)
	for _, e := range events {
		if uptoRound > 0 && e.Kind == obs.KindRound && e.Round > uptoRound {
			break
		}
		if err := m.Apply(e); err != nil {
			return m, err
		}
	}
	return m, nil
}
