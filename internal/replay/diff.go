package replay

import (
	"fmt"

	"dmra/internal/mec"
	"dmra/internal/obs"
)

// DiffResult locates the first divergence between two traces of the
// same scenario and quantifies its consequence as a state delta.
type DiffResult struct {
	// DivergeIndex is the index of the first event whose identity
	// (round, UE, BS, kind) differs between the traces, or the length of
	// the shorter trace when one is a strict prefix of the other; -1
	// when the traces are identical.
	DivergeIndex int
	// A and B are the events at DivergeIndex (nil past a trace's end).
	A, B *obs.Event
	// Round is the round the divergence occurred in (0 if identical).
	Round int
	// StateDiff is the human-readable state delta between the two
	// reconstructions at the end of the divergent round — what the
	// divergence cost, not just where it happened. Empty when identical.
	StateDiff []string
}

// Diff replays two event streams over the same network and reports the
// first divergent event plus the state delta at the end of the round it
// occurred in. Event identity is compared by Key() — (round, UE, BS,
// kind) — so traces from different runtimes or shard counts diff
// cleanly despite differing timestamps and shard attributions.
func Diff(net *mec.Network, a, b []obs.Event) (DiffResult, error) {
	idx := -1
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Key() != b[i].Key() {
			idx = i
			break
		}
	}
	if idx < 0 {
		if len(a) == len(b) {
			return DiffResult{DivergeIndex: -1}, nil
		}
		idx = n // one trace is a strict prefix of the other
	}

	res := DiffResult{DivergeIndex: idx}
	if idx < len(a) {
		e := a[idx]
		res.A = &e
		res.Round = e.Round
	}
	if idx < len(b) {
		e := b[idx]
		res.B = &e
		if res.Round == 0 || (res.B.Round < res.Round && res.B.Round > 0) {
			res.Round = e.Round
		}
	}

	// Replay each trace through the end of the divergent round, so the
	// state diff shows what the divergence did to ledgers and matches.
	ma, err := Run(net, truncAfterRound(a, res.Round), 0)
	if err != nil {
		return res, fmt.Errorf("replay: trace A: %w", err)
	}
	mb, err := Run(net, truncAfterRound(b, res.Round), 0)
	if err != nil {
		return res, fmt.Errorf("replay: trace B: %w", err)
	}
	res.StateDiff = ma.Snapshot().Diff(mb.Snapshot())
	return res, nil
}

// truncAfterRound cuts the stream at the barrier opening round+1, so a
// replay covers rounds 1..round completely.
func truncAfterRound(events []obs.Event, round int) []obs.Event {
	if round <= 0 {
		return events
	}
	for i, e := range events {
		if e.Kind == obs.KindRound && e.Round > round {
			return events[:i]
		}
	}
	return events
}

// bsLabel renders a BS id for humans, mapping the cloud sentinel.
func bsLabel(bs int) string {
	if bs == int(mec.CloudBS) {
		return "cloud"
	}
	return fmt.Sprintf("BS %d", bs)
}

// FormatEvent renders one event for diff/state output.
func FormatEvent(e *obs.Event) string {
	if e == nil {
		return "<end of trace>"
	}
	switch e.Kind {
	case obs.KindRound:
		return fmt.Sprintf("round %d barrier", e.Round)
	case obs.KindBroadcast:
		return fmt.Sprintf("round %d: %s broadcast", e.Round, bsLabel(e.BS))
	case obs.KindCloudFallback:
		return fmt.Sprintf("round %d: UE %d cloud fallback", e.Round, e.UE)
	default:
		return fmt.Sprintf("round %d: UE %d %s %s", e.Round, e.UE, e.Kind, bsLabel(e.BS))
	}
}
