package replay

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"dmra/internal/alloc"
	"dmra/internal/obs"
	"dmra/internal/workload"
)

// buildBenchRun constructs the pinned BenchmarkReplay input: the dense
// convergence trace of one observed solver run over a contended 800-UE
// scenario, plus a closure replaying it once. The same trace feeds the
// BENCH_BASELINE record, so cross-PR comparisons via
// scripts/benchdiff.sh time identical work.
func buildBenchRun(tb testing.TB) (events []obs.Event, replayOnce func() int64) {
	tb.Helper()
	cfg := workload.Default()
	cfg.UEs = 800
	net, err := cfg.Build(1)
	if err != nil {
		tb.Fatal(err)
	}
	sink := obs.NewSink(nil, 1<<20)
	d := alloc.NewDMRA(alloc.DefaultDMRAConfig()).WithObserver(obs.NewRecorder(nil, sink))
	if _, err := d.Allocate(net); err != nil {
		tb.Fatal(err)
	}
	events = sink.Events()
	if int64(len(events)) != sink.Total() {
		tb.Fatalf("ring dropped events: %d of %d", len(events), sink.Total())
	}
	replayOnce = func() int64 {
		m := New(net)
		for _, e := range events {
			if err := m.Apply(e); err != nil {
				tb.Fatal(err)
			}
		}
		return m.Events()
	}
	return events, replayOnce
}

// BenchmarkReplay times full-trace state reconstruction and reports the
// events/sec replay throughput — the figure that bounds how fast
// dmra-debug can seek through a long run.
func BenchmarkReplay(b *testing.B) {
	_, replayOnce := buildBenchRun(b)
	var applied int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		applied += replayOnce()
	}
	b.ReportMetric(float64(applied)/b.Elapsed().Seconds(), "events/sec")
}

// TestWriteReplayBenchBaseline appends one JSON line (ns/op, events/op,
// events/sec) to the file named by BENCH_BASELINE (skipped when unset).
// Run via `make bench`; scripts/benchdiff.sh compares the last two
// records and fails on regression.
func TestWriteReplayBenchBaseline(t *testing.T) {
	path := os.Getenv("BENCH_BASELINE")
	if path == "" {
		t.Skip("BENCH_BASELINE not set")
	}
	events, replayOnce := buildBenchRun(t)
	var applied int64
	r := testing.Benchmark(func(b *testing.B) {
		applied = 0
		for i := 0; i < b.N; i++ {
			applied += replayOnce()
		}
	})
	perOp := float64(applied) / float64(r.N)
	baseline := map[string]any{
		"time":           time.Now().UTC().Format(time.RFC3339),
		"benchmark":      "BenchmarkReplay",
		"gomaxprocs":     runtime.GOMAXPROCS(0),
		"ns_op":          r.NsPerOp(),
		"trace_events":   len(events),
		"events_per_op":  perOp,
		"events_per_sec": perOp / (float64(r.NsPerOp()) / 1e9),
	}
	data, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		t.Fatal(err)
	}
	t.Logf("appended BenchmarkReplay baseline to %s", path)
}
