package replay

import (
	"bytes"
	"strings"
	"testing"

	"dmra/internal/mec"
	"dmra/internal/obs"
)

func buildNet(t testing.TB, seed uint64) *mec.Network {
	t.Helper()
	net, err := parityShape(seed).Build(seed)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return net
}

// TestApplyRejectsGarbage feeds structurally invalid events and expects
// errors, never panics, with the machine still usable afterwards.
func TestApplyRejectsGarbage(t *testing.T) {
	net := buildNet(t, 42)
	cases := []struct {
		name string
		ev   []obs.Event
		want string
	}{
		{"event before round", []obs.Event{{Kind: obs.KindPropose, Round: 1, UE: 0, BS: 0}}, "before the first round barrier"},
		{"round skip", []obs.Event{{Kind: obs.KindRound, Round: 3, UE: -1, BS: -1}}, "round barrier 3 after round 0"},
		{"round restart", []obs.Event{
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
		}, "interleaved multi-run"},
		{"ue out of range", []obs.Event{
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
			{Kind: obs.KindPropose, Round: 1, UE: 1 << 30, BS: 0},
		}, "outside"},
		{"negative ue", []obs.Event{
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
			{Kind: obs.KindAccept, Round: 1, UE: -5, BS: 0},
		}, "outside"},
		{"bs out of range", []obs.Event{
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
			{Kind: obs.KindAccept, Round: 1, UE: 0, BS: 1 << 30},
		}, "outside"},
		{"stale round on event", []obs.Event{
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
			{Kind: obs.KindBroadcast, Round: 7, UE: -1, BS: 0},
		}, "carries round 7 inside round 1"},
		{"unknown kind", []obs.Event{
			{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1},
			{Kind: obs.EventKind(200), Round: 1, UE: 0, BS: 0},
		}, "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := New(net)
			var err error
			for _, e := range tc.ev {
				if err = m.Apply(e); err != nil {
					break
				}
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

// TestAcceptSemantics pins the ledger arithmetic: debit on accept,
// idempotent re-send, conflict and overdraw detection.
func TestAcceptSemantics(t *testing.T) {
	net := buildNet(t, 42)
	// Find a UE with at least two candidates for the conflict case.
	var u mec.UEID = mec.UEID(len(net.UEs))
	for i := range net.UEs {
		if len(net.Candidates(mec.UEID(i))) >= 2 {
			u = mec.UEID(i)
			break
		}
	}
	if int(u) == len(net.UEs) {
		t.Skip("no UE with two candidates in this shape")
	}
	cands := net.Candidates(u)
	b0, b1 := cands[0].BS, cands[1].BS

	m := New(net)
	if err := m.Apply(obs.Event{Kind: obs.KindRound, Round: 1, UE: -1, BS: -1}); err != nil {
		t.Fatal(err)
	}
	acc := obs.Event{Kind: obs.KindAccept, Round: 1, UE: int(u), BS: int(b0)}
	if err := m.Apply(acc); err != nil {
		t.Fatal(err)
	}
	ue := &net.UEs[u]
	wantCRU := net.BSs[b0].CRUCapacity[ue.Service] - ue.CRUDemand
	if got := m.Snapshot().CRU(int(b0), int(ue.Service)); got != wantCRU {
		t.Fatalf("RemCRU after accept = %d, want %d", got, wantCRU)
	}
	if got := m.Snapshot().RemRRB[b0]; got != net.BSs[b0].MaxRRBs-cands[0].RRBs {
		t.Fatalf("RemRRB after accept = %d, want %d", got, net.BSs[b0].MaxRRBs-cands[0].RRBs)
	}
	if st := m.UE(int(u)); st.Phase != PhaseMatched || st.ServingBS != b0 {
		t.Fatalf("status after accept = %+v", st)
	}
	// Idempotent re-send: no double debit.
	if err := m.Apply(acc); err != nil {
		t.Fatalf("re-sent accept: %v", err)
	}
	if got := m.Snapshot().CRU(int(b0), int(ue.Service)); got != wantCRU {
		t.Fatalf("RemCRU after re-send = %d, want %d (double debit)", got, wantCRU)
	}
	// Conflicting accept on a different BS is a corrupt trace.
	if err := m.Apply(obs.Event{Kind: obs.KindAccept, Round: 1, UE: int(u), BS: int(b1)}); err == nil {
		t.Fatal("conflicting accept on a second BS did not error")
	}
}

// TestReplayTruncatedTrace proves the warn-and-continue path end to end:
// a trace cut mid-line yields the decoded prefix plus an error, and the
// prefix replays cleanly.
func TestReplayTruncatedTrace(t *testing.T) {
	net := buildNet(t, 42)
	runs := runAllRuntimes(t, net, 42)
	run := runs[0]

	var buf bytes.Buffer
	sink := obs.NewSink(&buf, 16)
	for _, e := range run.events {
		sink.Emit(e)
	}
	full := buf.Bytes()
	cut := full[:len(full)-len(full)/3] // chop inside the tail

	events, err := obs.ReadEvents(bytes.NewReader(cut))
	if err == nil {
		t.Fatal("truncated trace read without error")
	}
	if len(events) == 0 {
		t.Fatal("truncated trace yielded no prefix events")
	}
	m := New(net)
	for _, e := range events {
		if aerr := m.Apply(e); aerr != nil {
			t.Fatalf("prefix replay failed: %v", aerr)
		}
	}
	if m.Events() != int64(len(events)) {
		t.Fatalf("applied %d events, want %d", m.Events(), len(events))
	}
}

// TestDiffIdentical pins the no-divergence result.
func TestDiffIdentical(t *testing.T) {
	net := buildNet(t, 42)
	run := runAllRuntimes(t, net, 42)[1] // protocol
	res, err := Diff(net, run.events, run.events)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergeIndex != -1 || len(res.StateDiff) != 0 {
		t.Fatalf("identical traces diverge: %+v", res)
	}
}

// TestDiffAcrossRuntimes diffs the protocol trace against the wire
// trace of the same scenario — parity says they are identical by Key.
func TestDiffAcrossRuntimes(t *testing.T) {
	net := buildNet(t, 42)
	runs := runAllRuntimes(t, net, 42)
	res, err := Diff(net, runs[1].events, runs[2].events)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergeIndex != -1 {
		t.Fatalf("protocol and wire traces diverge at %d: %s vs %s",
			res.DivergeIndex, FormatEvent(res.A), FormatEvent(res.B))
	}
}

// TestDiffDivergence plants a divergence and checks it is located and
// quantified.
func TestDiffDivergence(t *testing.T) {
	net := buildNet(t, 42)
	run := runAllRuntimes(t, net, 42)[1]
	a := run.events

	// Mutate one accept into a trim reject: the diff must spot the index
	// and report the missing match in the state delta.
	b := append([]obs.Event(nil), a...)
	mut := -1
	for i, e := range b {
		if e.Kind == obs.KindAccept {
			b[i].Kind = obs.KindRejectTrim
			mut = i
			break
		}
	}
	if mut < 0 {
		t.Skip("trace has no accepts")
	}
	res, err := Diff(net, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergeIndex != mut {
		t.Fatalf("DivergeIndex = %d, want %d", res.DivergeIndex, mut)
	}
	if res.A == nil || res.B == nil || res.A.Kind != obs.KindAccept || res.B.Kind != obs.KindRejectTrim {
		t.Fatalf("divergent events = %s vs %s", FormatEvent(res.A), FormatEvent(res.B))
	}
	if len(res.StateDiff) == 0 {
		t.Fatal("state delta empty for a dropped accept")
	}

	// Prefix truncation: one trace ends early.
	short := a[:len(a)-3]
	res, err = Diff(net, a, short)
	if err != nil {
		t.Fatal(err)
	}
	if res.DivergeIndex != len(short) || res.B != nil || res.A == nil {
		t.Fatalf("prefix diff = %+v", res)
	}
}

// FuzzReplayDecode is the no-panic gate for the whole decode+replay
// path: arbitrary bytes through ReadTrace, then every decoded event
// through Apply. Errors are expected; panics are bugs.
func FuzzReplayDecode(f *testing.F) {
	net, err := parityShape(42).Build(42)
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(""))
	f.Add([]byte("{"))
	f.Add([]byte("garbage\nmore garbage"))
	f.Add([]byte(`{"manifest":{"schemaVersion":1,"algorithm":"dmra","seed":1,"configHash":"x"}}` + "\n"))
	f.Add([]byte(`{"seq":1,"kind":"round","round":1,"ue":-1,"bs":-1}` + "\n" +
		`{"seq":2,"kind":"accept","round":1,"ue":0,"bs":0}`))
	f.Add([]byte(`{"seq":1,"kind":"accept","round":9,"ue":99999,"bs":-7}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		manifest, events, _ := obs.ReadTrace(bytes.NewReader(data))
		_ = manifest
		m := New(net)
		for _, e := range events {
			if err := m.Apply(e); err != nil {
				break
			}
		}
		// Diff must also hold up against arbitrary decoded streams.
		_, _ = Diff(net, events, events)
	})
}
