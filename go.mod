module dmra

go 1.22
